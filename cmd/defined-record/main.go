// Command defined-record runs an OSPF production network under DEFINED-RB
// against a synthesized Tier-1-style failure trace and writes the partial
// recording to a file for later replay with defined-debug.
//
// Usage:
//
//	defined-record [-topology sprintlink] [-events 20] [-seed 7] \
//	               [-window 30] [-o recording.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"defined"
	"defined/internal/routing/ospf"
	"defined/internal/topology"
	"defined/internal/trace"
	"defined/internal/vtime"
)

func main() {
	topoName := flag.String("topology", "sprintlink", "topology: sprintlink, ebone, level3")
	events := flag.Int("events", 20, "number of trace events to replay")
	seed := flag.Uint64("seed", 7, "workload and jitter seed")
	window := flag.Float64("window", 30, "virtual seconds to compress the trace into")
	out := flag.String("o", "recording.json", "output file")
	flag.Parse()

	g, err := topology.ByName(*topoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "defined-record: %v\n", err)
		os.Exit(1)
	}
	apps := make([]defined.Application, g.N)
	for i := range apps {
		apps[i] = ospf.New(ospf.Config{})
	}
	net, err := defined.NewNetwork(g, apps,
		defined.WithSeed(*seed), defined.WithRecording())
	if err != nil {
		fmt.Fprintln(os.Stderr, "defined-record:", err)
		os.Exit(1)
	}

	evs := trace.Synthesize(g, trace.Config{Seed: *seed, Events: *events})
	evs = trace.Compress(evs, vtime.Duration(*window*float64(vtime.Second)))
	for _, ev := range evs {
		ev := ev
		net.At(defined.Time(ev.At), func() {
			if err := net.InjectTrace(ev); err != nil {
				fmt.Fprintf(os.Stderr, "defined-record: inject: %v\n", err)
			}
		})
	}
	net.Run(defined.Seconds(*window + 1))
	if !net.Drain() {
		fmt.Fprintln(os.Stderr, "defined-record: network did not quiesce")
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "defined-record: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	rec := net.Recording()
	if err := rec.Encode(f); err != nil {
		fmt.Fprintf(os.Stderr, "defined-record: %v\n", err)
		os.Exit(1)
	}
	st := net.Stats()
	fmt.Printf("recorded %d external events over %d groups on %s (%d deliveries, %d rollbacks, %d anti-messages)\n",
		len(rec.Events), rec.Groups, g.Name, st.Deliveries, st.Rollbacks, st.AntiMessages)
	fmt.Printf("wrote %s — replay with: defined-debug -topology %s -recording %s\n",
		*out, *topoName, *out)
}
