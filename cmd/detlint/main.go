// Command detlint runs the determinism-invariant analyzer suite
// (internal/analysis/detlint) over the given package patterns and exits
// nonzero on any unsuppressed diagnostic. CI runs it as a blocking job:
//
//	go run ./cmd/detlint ./...
//
// Suppressions are inline //detlint:<verb> <justification> comments; see
// the analyzer package docs for the verbs and the policy (a justification
// is mandatory — an empty one is itself a diagnostic).
package main

import (
	"flag"
	"fmt"
	"os"

	"defined/internal/analysis/detlint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range detlint.All() {
			fmt.Printf("%-14s //detlint:%-10s %s\n", a.Name, a.Verb, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	pkgs, err := detlint.Load(wd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	diags, err := detlint.Run(pkgs, detlint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
