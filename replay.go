package defined

import (
	"io"

	"defined/internal/debugger"
	"defined/internal/lockstep"
	"defined/internal/ordering"
)

// Replay is a debugging network driven by DEFINED-LS: it replays a
// Recording in lockstep, reproducing the production execution exactly,
// with interactive stepping.
type Replay struct {
	eng *lockstep.Engine
}

// ReplayOption configures a Replay.
type ReplayOption func(*lockstep.Config)

// WithReplayOrdering overrides the recorded ordering function to explore
// alternative execution paths (§4's discussion); the default reproduces
// the production run.
func WithReplayOrdering(f ordering.Func) ReplayOption {
	return func(c *lockstep.Config) { c.Ordering = f }
}

// WithReplayLog retains per-node delivery logs.
func WithReplayLog() ReplayOption {
	return func(c *lockstep.Config) { c.LogDeliveries = true }
}

// Delivery is one replayed event (see lockstep.Delivery).
type Delivery = lockstep.Delivery

// StepInfo summarizes one lockstep round (see lockstep.StepInfo).
type StepInfo = lockstep.StepInfo

// NewReplay builds a debugging network over g replaying rec. The apps must
// be fresh instances of the same software the production network ran.
func NewReplay(g *Topology, apps []Application, rec *Recording, opts ...ReplayOption) (*Replay, error) {
	var cfg lockstep.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	eng, err := lockstep.New(g, apps, rec, cfg)
	if err != nil {
		return nil, err
	}
	return &Replay{eng: eng}, nil
}

// StepEvent delivers the next single event (finest granularity).
func (r *Replay) StepEvent() (Delivery, bool) { return r.eng.StepEvent() }

// StepRound completes the current lockstep round (the unit the paper's
// response-time figures measure).
func (r *Replay) StepRound() bool { return r.eng.StepRound() }

// StepGroup completes the current beacon group.
func (r *Replay) StepGroup() bool { return r.eng.StepGroup() }

// RunToEnd replays everything remaining (or until a breakpoint fires) and
// returns the number of deliveries executed.
func (r *Replay) RunToEnd() int { return r.eng.RunToEnd() }

// Done reports whether the replay has finished.
func (r *Replay) Done() bool { return r.eng.Done() }

// SetBreakpoint pauses stepping before any delivery matching fn.
func (r *Replay) SetBreakpoint(fn func(Delivery) bool) { r.eng.SetBreakpoint(fn) }

// BreakpointHit returns the pending paused delivery, if any.
func (r *Replay) BreakpointHit() *Delivery { return r.eng.BreakpointHit() }

// App returns node id's application for state inspection.
func (r *Replay) App(id NodeID) Application { return r.eng.App(id) }

// Steps returns the per-round summaries (deliveries, modeled response
// times).
func (r *Replay) Steps() []StepInfo { return r.eng.Steps() }

// DeliveredOrder returns node id's delivery sequence rendered as strings.
func (r *Replay) DeliveredOrder(id NodeID) []string {
	keys := r.eng.DeliveredKeys(id)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k.String()
	}
	return out
}

// Debug runs an interactive command session (gdb-flavored; see
// internal/debugger for the command set) reading from in and writing to
// out. It returns the number of deliveries executed.
func (r *Replay) Debug(in io.Reader, out io.Writer) int {
	return debugger.New(r.eng, in, out).Run()
}
