package defined

import (
	"defined/internal/checkpoint"
	"defined/internal/faults"
	"defined/internal/msg"
	"defined/internal/ordering"
	"defined/internal/rollback"
	"defined/internal/scenario"
	"defined/internal/trace"
	"defined/internal/vtime"
)

// Network is a production network instrumented by DEFINED-RB (or running
// bare when the Baseline option is set).
type Network struct {
	eng *rollback.Engine
	g   *Topology
}

// netConfig is the Network-level configuration options write through.
// Options are thin builders over the scenario engine-spec carrier — the
// same carrier committed spec files resolve through — so both invocation
// paths share one defaulting and validation table. Two pieces live beside
// the carrier: a programmatic ordering.Func override (a Func is not
// serializable; spec files select orderings by name) and the fault plan
// (scheduled against the built engine — the faults package sits on top of
// rollback, not under it).
type netConfig struct {
	eng      scenario.EngineSpec
	ordering ordering.Func
	plan     *faults.Plan
}

// Option configures a Network.
type Option func(*netConfig)

// WithSeed sets the physical-jitter seed (different seeds = different
// arrival interleavings; committed orders stay identical under DEFINED).
func WithSeed(seed uint64) Option {
	return func(c *netConfig) { c.eng.Seed = &seed }
}

// WithJitterScale scales link jitter (stress knob; default 1.0).
func WithJitterScale(scale float64) Option {
	return func(c *netConfig) { c.eng.JitterScale = &scale }
}

// WithOrdering overrides the pseudorandom ordering function (default OO).
func WithOrdering(f ordering.Func) Option {
	return func(c *netConfig) { c.ordering, c.eng.Ordering = f, f.Name() }
}

// WithBaseline disables the DEFINED substrate entirely — the unmodified
// software baseline of the evaluation.
func WithBaseline() Option {
	return func(c *netConfig) { c.eng.Baseline = scenarioBool(true) }
}

// WithRecording captures the partial recording of external events.
func WithRecording() Option {
	return func(c *netConfig) { c.eng.Record = scenarioBool(true) }
}

// WithDeliveryLog retains committed delivery sequences (determinism
// verification).
func WithDeliveryLog() Option {
	return func(c *netConfig) { c.eng.DeliveryLog = scenarioBool(true) }
}

// WithStrategy selects checkpoint timing and rollback copy mode
// (including the zero-valued TF/FK strategy, which a bare Config would
// replace with the TM/MI default).
func WithStrategy(s checkpoint.Strategy) Option {
	return func(c *netConfig) { c.eng.Strategy = s.String() }
}

// WithChainBound caps causal chain length per timestep.
func WithChainBound(n int) Option {
	return func(c *netConfig) { c.eng.ChainBound = &n }
}

// WithDropProbability injects application-message loss with probability p
// per transmission. Loss draws are per-directed-link counter-seeded
// (keyed by seed, link direction and the link's wire sequence number), so
// which packets die is a pure function of the run's inputs — independent
// of shard count, lookahead and event interleaving — and composes with
// every other option. WithPerLinkLoss is an alias with the fault-model
// name.
func WithDropProbability(p float64) Option {
	return func(c *netConfig) { c.eng.PerLinkLoss = &p }
}

// WithPerLinkLoss injects per-directed-link deterministic message loss
// with probability p — the fault-injection subsystem's loss knob (an
// alias for WithDropProbability; see that option for the determinism
// contract).
func WithPerLinkLoss(p float64) Option {
	return func(c *netConfig) { c.eng.PerLinkLoss = &p }
}

// WithDuplication injects deterministic message duplication: each
// application transmission is duplicated with probability p, the copy
// enqueued immediately behind the original on the same link (FIFO keeps
// it adjacent). Draws come from the same per-directed-link counter-seeded
// streams as loss, so duplication composes with sharding and lookahead
// bit-identically.
func WithDuplication(p float64) Option {
	return func(c *netConfig) { c.eng.Duplication = &p }
}

// WithFaultPlan schedules a fault-injection plan (node crashes and
// restarts, link cuts and heals, partitions — see internal/faults) to
// execute during the run. Every plan event fires on the driver queue as
// an ordinary external event: recorded, ordered and rollback-capable, so
// a faulted run commits bit-identical orders under any shard count
// (proved by TestFaultPlanGolden). Under WithBaseline crash faults are
// no-ops (there is no substrate to quarantine); link events still apply.
func WithFaultPlan(p *faults.Plan) Option {
	return func(c *netConfig) { c.plan = p }
}

// WithDeferral tunes the rollback-avoidance arrival deferral: slack is the
// ordering-key gap below which an in-order arrival is briefly held for
// predicted predecessors, max caps any single hold (see
// rollback.Config.DeferSlack/DeferMax). Committed orders are unaffected.
func WithDeferral(slack, max Duration) Option {
	return func(c *netConfig) {
		c.eng.Deferral = scenarioBool(true)
		c.eng.DeferSlack, c.eng.DeferMax = scenario.Dur(slack), scenario.Dur(max)
	}
}

// WithoutDeferral disables arrival deferral, restoring the eager
// deliver-then-rollback speculation dynamics (committed orders are
// bit-identical either way; only rollback counts and virtual timing move).
func WithoutDeferral() Option {
	return func(c *netConfig) { c.eng.Deferral = scenarioBool(false) }
}

// WithSettleBound pins a static history retirement bound in place of the
// default adaptive straggler-margin estimator; rollback.StaticSettle
// reproduces the paper's footnote-3 rule for a topology.
func WithSettleBound(d Duration) Option {
	return func(c *netConfig) { c.eng.SettleBound = scenario.Dur(d) }
}

// WithoutRouteCache disables the daemons' epoch-keyed route-computation
// cache: every SPF run, announcement build and BGP decision executes the
// real computation — the pre-cache behaviour, kept selectable so golden
// tests can prove the cache never changes execution (committed orders,
// stats and routing tables are bit-identical either way).
func WithoutRouteCache() Option {
	return func(c *netConfig) { c.eng.RouteCache = scenarioBool(false) }
}

// WithoutMessagePool disables refcounted wire-message pooling (unmanaged
// heap-allocated messages — the pre-refcount behaviour, kept selectable so
// golden tests can prove the lifecycle never changes execution).
func WithoutMessagePool() Option {
	return func(c *netConfig) { c.eng.MessagePool = scenarioBool(false) }
}

// WithMessagePoison enables the message pool's debug poison mode: released
// messages are scribbled and quarantined, so any use-after-release is
// deterministic — stale reads observe the sentinel and stale lifecycle
// calls tally in the pool's Violations counter — instead of silently
// aliasing a recycled struct.
func WithMessagePoison() Option {
	return func(c *netConfig) { c.eng.Poison = scenarioBool(true) }
}

// WithShards runs the rollback engine's simulator on n parallel per-core
// shards. Routers are partitioned across shards, each shard executing its
// nodes' deliveries and timers on its own goroutine inside conservative
// lookahead windows; cross-shard sends are merged at a commit barrier in
// deterministic order. Committed delivery orders, statistics and routing
// tables are bit-identical to the sequential engine for any n (proved by
// TestShardGolden) — sharding changes wall-clock speed only, never
// execution. n <= 1 keeps the sequential engine; sharding is ignored
// under WithBaseline (no rollback layer to shard). Loss, duplication and
// fault plans compose with sharding: per-packet fates are per-link
// counter-seeded draws and plan events run driver-serial between windows,
// so neither depends on a global send order.
func WithShards(n int) Option {
	return func(c *netConfig) { c.eng.Shards = &n }
}

// WithoutSharding pins the sequential single-goroutine engine — the
// default, kept selectable so callers composing option lists can
// explicitly override an earlier WithShards.
func WithoutSharding() Option {
	return func(c *netConfig) { c.eng.Shards = scenarioInt(0) }
}

// WithLookahead enables per-directed-link lookahead, one mechanism with
// two consumers. In the simulator, each parallel window's end is computed
// from per-link bounds (sending lane's next event time plus the link's
// static delay, FIFO-clamped past the link frontier) instead of one
// global minimum link delay, so lightly-coupled shards cross far fewer
// commit barriers. In the rollback engine, arrival deferral switches from
// the heuristic slack rule to an exact per-in-link release — hold a
// message until every predicted earlier message could have arrived given
// each link's observed straggler lag — which removes the rollback tail
// the fixed slack cannot see. Both consumers change only speculation
// dynamics and barrier placement: committed orders, statistics and
// routing tables stay bit-identical to a lookahead-off run (proved by
// TestLookaheadGolden). The exact hold requires deferral (it is inert
// under WithoutDeferral or WithBaseline); the window consumer requires
// WithShards.
func WithLookahead() Option {
	return func(c *netConfig) { c.eng.Lookahead = scenarioBool(true) }
}

// WithoutLookahead pins the global-lookahead window rule and the
// heuristic deferral slack — the default, kept selectable so callers
// composing option lists can explicitly override an earlier
// WithLookahead.
func WithoutLookahead() Option {
	return func(c *netConfig) { c.eng.Lookahead = scenarioBool(false) }
}

// scenarioBool/scenarioInt build the pointer literals the spec carrier
// uses for explicit values.
func scenarioBool(v bool) *bool { return &v }
func scenarioInt(v int) *int    { return &v }

// NewNetwork builds a production network over g with one application per
// node (len(apps) == g.N). Options resolve through the scenario engine
// carrier, so contradictory combinations (Baseline with Shards, poison
// without the pool, inert lookahead, ...) return a validation error
// instead of being silently ignored.
func NewNetwork(g *Topology, apps []Application, opts ...Option) (*Network, error) {
	var c netConfig
	for _, opt := range opts {
		opt(&c)
	}
	resolved, err := scenario.ResolveEngine(c.eng)
	if err != nil {
		return nil, err
	}
	cfg, err := resolved.Config()
	if err != nil {
		return nil, err
	}
	if c.ordering != nil {
		// Programmatic override: the carrier saw the ordering's name (for
		// validation and deferral defaulting); the run uses the Func
		// itself, seed and all.
		cfg.Ordering = c.ordering
	}
	net := &Network{eng: rollback.New(g, apps, cfg), g: g}
	if c.plan != nil {
		c.plan.Schedule(net.eng, net.At)
	}
	return net, nil
}

// Run advances the network to virtual time until.
func (n *Network) Run(until Time) { n.eng.Run(until) }

// Drain processes all pending events until the network quiesces; it
// reports whether quiescence was reached within the internal event budget
// (Theorem 2 guarantees it for finite inputs).
func (n *Network) Drain() bool { return n.eng.RunQuiescent(50_000_000) }

// Now returns the current virtual time.
func (n *Network) Now() Time { return n.eng.Now() }

// At schedules fn at virtual time t (scenario drivers inject external
// events from such callbacks).
func (n *Network) At(t Time, fn func()) { n.eng.Sim().ScheduleFn(t, fn) }

// InjectExternal applies (and records) an external event at node id.
func (n *Network) InjectExternal(id NodeID, ev ExternalEvent) {
	n.eng.InjectExternal(id, ev)
}

// InjectLinkChange fails or repairs the a-b link, notifying both
// endpoints.
func (n *Network) InjectLinkChange(a, b int, up bool) error {
	return n.eng.InjectLinkChange(a, b, up)
}

// InjectTrace applies one synthesized trace event.
func (n *Network) InjectTrace(ev trace.Event) error { return n.eng.InjectTrace(ev) }

// App returns node id's application for inspection.
func (n *Network) App(id NodeID) Application { return n.eng.App(id) }

// Recording returns the captured partial recording (nil unless
// WithRecording was set).
func (n *Network) Recording() *Recording { return n.eng.Recording() }

// Stats is the engine's counter block (rollbacks, anti-messages, crash
// faults, ...).
type Stats = rollback.Stats

// Stats returns engine counters (rollbacks, anti-messages, ...).
func (n *Network) Stats() Stats { return n.eng.Stats() }

// MessagePool exposes the wire-message pool (lifecycle tests read its
// violation, quarantine and live counters).
func (n *Network) MessagePool() *msg.Pool { return n.eng.Sim().Pool() }

// PoolViolations sums lifecycle-violation counts across every message
// pool in the simulator — the driver pool plus, under WithShards, each
// shard's lane pool.
func (n *Network) PoolViolations() uint64 { return n.eng.Sim().PoolViolations() }

// WindowStats reports the parallel engine's phase counters: windows is
// how many parallel windows ran (each ends at one commit barrier),
// serialSteps how many events fell back to one-at-a-time serial
// execution. Both are zero on the sequential engine. Fewer windows for
// the same workload means wider windows — fewer barrier crossings — which
// is the quantity per-link lookahead (WithLookahead) exists to shrink.
func (n *Network) WindowStats() (windows, serialSteps uint64) {
	s := n.eng.Sim()
	return s.Windows(), s.SerialSteps()
}

// CommittedOrder returns node id's committed delivery sequence rendered as
// strings (requires WithDeliveryLog for the settled prefix).
func (n *Network) CommittedOrder(id NodeID) []string {
	keys := n.eng.CommittedKeys(id)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k.String()
	}
	return out
}

// PacketsReceived reports how many packets node id has received.
func (n *Network) PacketsReceived(id NodeID) uint64 {
	return n.eng.Sim().Stats(id).Received
}

// ResetPacketCounters zeroes traffic counters (per-event overhead
// measurements).
func (n *Network) ResetPacketCounters() { n.eng.Sim().ResetStats() }

// Crashed reports whether node id is currently crash-quarantined (crashed
// by a fault plan or a recovered handler panic, and not yet restarted).
func (n *Network) Crashed(id NodeID) bool { return n.eng.Crashed(id) }

// CheckFaults runs the fault-injection invariant pass over the (typically
// quiescent) network: settle-violation and pool-lifecycle counters,
// message-reference leak accounting, history-window high-water bounds and
// — when cfg.Routes is set — post-heal route coherence against shortest
// paths over the current topology state. See faults.Check.
func (n *Network) CheckFaults(cfg faults.CheckConfig) *faults.Report {
	return faults.Check(n.eng, n.g, cfg)
}

// Millisecond re-exports the virtual millisecond for option values.
const Millisecond = vtime.Millisecond

// Second re-exports the virtual second.
const Second = vtime.Second
