package defined_test

// The committed-scenario twin of TestFigureMetricsGolden: the same
// headline constants, reproduced through the spec front door (committed
// JSON → Resolve → OptionsFromSpec → figure) instead of hand-coded
// Options. Together with TestCommittedSpecOptions (which proves the
// derived Options equal the literal ones) this pins the whole declarative
// path bit-identically to the legacy one.

import (
	"testing"

	"defined/internal/experiments"
)

func TestFigureSpecGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates two figures (~10 s)")
	}

	r6, err := experiments.LoadSpec("fig6a")
	if err != nil {
		t.Fatal(err)
	}
	f6, err := experiments.RunSpec(r6)
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenMedianX(f6.SeriesByName("DEFINED-RB").Points); got != 10.358974358974359 {
		t.Errorf("spec fig6a DEFINED-RB median pkts = %.17g, want 10.358974358974359", got)
	}
	if got := goldenMedianX(f6.SeriesByName("XORP").Points); got != 8.3076923076923066 {
		t.Errorf("spec fig6a XORP median pkts = %.17g, want 8.3076923076923066", got)
	}

	r8, err := experiments.LoadSpec("fig8d")
	if err != nil {
		t.Fatal(err)
	}
	f8, err := experiments.RunSpec(r8)
	if err != nil {
		t.Fatal(err)
	}
	pts := f8.SeriesByName("DEFINED-RB").Points
	if got := pts[len(pts)-1].Y; got != 0.46000000000000002 {
		t.Errorf("spec fig8d convergence at highest rate = %.17g s, want 0.46000000000000002", got)
	}
}
