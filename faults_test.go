package defined_test

// Golden and robustness tests for the fault-injection subsystem. The
// determinism contract under faults is the same one the shard goldens
// enforce fault-free: a faulted run is a pure function of (topology,
// seed, plan, engine config), so committed delivery orders, Stats
// counters and final routing tables must be bit-identical across shard
// counts. On top of determinism, every faulted run must degrade
// gracefully: the invariant pass (settle violations, pool lifecycle,
// message-reference leaks, window bounds, and — on loss-free runs —
// post-heal route coherence) has to come back clean.

import (
	"fmt"
	"testing"

	"defined"
	"defined/internal/checkpoint"
	"defined/internal/faults"
	"defined/internal/routing/api"
	"defined/internal/routing/ospf"
)

// faultRun drives one OSPF run under a fault plan plus per-link loss and
// duplication, to the plan's horizon plus convergence slack, and returns
// the committed orders, stats string, routing tables and network.
func faultRun(t *testing.T, g *defined.Topology, seed uint64, plan *faults.Plan, loss, dup float64, extra ...defined.Option) ([][]string, string, []string, *defined.Network) {
	t.Helper()
	mi := checkpoint.Strategy{Timing: checkpoint.TM, Mode: checkpoint.MI}
	apps := make([]defined.Application, g.N)
	daemons := make([]*ospf.Daemon, g.N)
	for i := range apps {
		daemons[i] = ospf.New(ospf.Config{})
		apps[i] = daemons[i]
	}
	opts := append([]defined.Option{
		defined.WithSeed(seed),
		defined.WithStrategy(mi),
		defined.WithDeliveryLog(),
		defined.WithPerLinkLoss(loss),
		defined.WithDuplication(dup),
		defined.WithFaultPlan(plan),
	}, extra...)
	net := mustNet(t, g, apps, opts...)
	net.Run(plan.Horizon().Add(faults.ConvergenceSlack(g)))
	if !net.Drain() {
		t.Fatal("network failed to quiesce under faults (wedged hold or runaway speculation)")
	}
	var orders [][]string
	var tables []string
	for i := 0; i < g.N; i++ {
		orders = append(orders, net.CommittedOrder(defined.NodeID(i)))
		tables = append(tables, daemons[i].DumpTable())
	}
	return orders, fmt.Sprintf("%+v", net.Stats()), tables, net
}

// ospfRouteReader adapts a network's OSPF daemons to the invariant
// checker's route-coherence pass.
func ospfRouteReader(net *defined.Network) faults.RouteReader {
	return func(src, dst defined.NodeID) (int64, bool) {
		r, ok := net.App(src).(*ospf.Daemon).RoutingTable()[dst]
		return int64(r.Cost), ok
	}
}

// mustDegradeGracefully runs the full invariant pass (including route
// coherence through the given reader, ospfRouteReader when every app is a
// bare daemon) and fails the test on any violation.
func mustDegradeGracefully(t *testing.T, what string, net *defined.Network, routes faults.RouteReader) *faults.Report {
	t.Helper()
	rep := net.CheckFaults(faults.CheckConfig{Routes: routes})
	if err := rep.Err(); err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	return rep
}

// TestFaultPlanGolden is the fault-injection determinism golden: a
// seeded-random plan (crashes/restarts, link flaps, a partition and heal)
// composed with per-link loss and duplication must commit bit-identical
// executions — committed orders, full Stats string, routing tables —
// across shard counts {1, 4}, at lookahead off and at lookahead on,
// across three seeds and both evaluation topology families, and every
// run must pass the graceful-degradation invariant pass. A loss-free
// companion run additionally pins post-heal route coherence: with the
// plan's faults alone (every crash restarted, every cut healed) the
// network must re-converge to Dijkstra ground truth. The lossy matrix
// skips that one check by design — the OSPF daemon floods without
// acks or retransmissions, so a single unlucky (but deterministic)
// loss draw on a heal-time LSA can legitimately strand a stale route.
//
// The comparison axis is deliberately the shard count at fixed
// speculation config, not the lookahead toggle: a crash fires at a fixed
// virtual time and cuts whatever is physically in flight or parked at
// that instant, and how long an arrival sits held is exactly what
// lookahead changes — so, unlike the fault-free goldens, faulted
// committed orders are per-speculation-config. What must never move them
// is parallelism.
func TestFaultPlanGolden(t *testing.T) {
	topos := []struct {
		name string
		mk   func(seed uint64) *defined.Topology
	}{
		{"sprintlink", func(uint64) *defined.Topology { return defined.Sprintlink() }},
		{"brite20", func(seed uint64) *defined.Topology { return defined.Brite(20, 2, 9000+seed) }},
	}
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, tp := range topos {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", tp.name, seed), func(t *testing.T) {
				g := tp.mk(seed)
				plan := faults.Random(g, seed, faults.RandomConfig{
					Start: defined.Seconds(0.3), End: defined.Seconds(2),
				})
				if plan.Len() == 0 {
					t.Fatal("random plan is empty — the campaign tests nothing")
				}
				// Loss-free companion: post-heal route coherence golden.
				_, _, _, cleanNet := faultRun(t, tp.mk(seed), seed, plan, 0, 0)
				mustDegradeGracefully(t, "loss-free route coherence", cleanNet, ospfRouteReader(cleanNet))
				for _, la := range []bool{false, true} {
					laOpts := []defined.Option{defined.WithoutLookahead()}
					if la {
						laOpts = []defined.Option{defined.WithLookahead()}
					}
					var refOrders [][]string
					var refTables []string
					var refStats string
					for _, shards := range []int{1, 4} {
						opts := append(append([]defined.Option{}, laOpts...), defined.WithShards(shards))
						orders, stats, tables, net := faultRun(t, tp.mk(seed), seed, plan, 0.002, 0.002, opts...)
						what := fmt.Sprintf("lookahead=%v shards=%d", la, shards)
						st := net.Stats()
						if st.NodeCrashes == 0 || st.NodeRestarts == 0 {
							t.Fatalf("%s: plan executed no crash/restart faults: %+v", what, st)
						}
						rep := mustDegradeGracefully(t, what, net, nil)
						if len(rep.CrashedNodes) != 0 {
							t.Fatalf("%s: nodes still crashed after a fully-paired plan: %v", what, rep.CrashedNodes)
						}
						if refOrders == nil {
							refOrders, refTables, refStats = orders, tables, stats
							continue
						}
						diffOrders(t, what+" vs 1-shard", refOrders, orders)
						diffTables(t, what+" vs 1-shard", refTables, tables)
						if stats != refStats {
							t.Fatalf("%s: stats diverged across shard counts under faults:\n%s\nvs\n%s",
								what, stats, refStats)
						}
					}
				}
			})
		}
	}
}

// TestLookaheadReleaseUnderFaults stresses the interaction the lookahead
// hold is most exposed to: a per-link promise whose covering arrival
// never comes, because the message was dropped by per-link loss or its
// sender crashed mid-plan. Heavy loss plus a crash/restart plan with
// lookahead's exact holds enabled must still quiesce (the anti-message
// and idle-horizon backstops release every parked arrival), keep the
// history windows bounded, stay bit-identical between the sequential and
// the 4-shard engine, and pass the invariant pass. The lookahead-off run
// establishes that the stress plan itself degrades gracefully either way.
func TestLookaheadReleaseUnderFaults(t *testing.T) {
	g := defined.Sprintlink()
	const seed = 7
	plan := faults.Random(g, seed, faults.RandomConfig{
		Start: defined.Seconds(0.3), End: defined.Seconds(2), Crashes: 3,
	})
	const loss, dup = 0.05, 0.01

	_, _, _, offNet := faultRun(t, g, seed, plan, loss, dup,
		defined.WithoutLookahead())
	mustDegradeGracefully(t, "lookahead-off", offNet, nil)

	onOrders, _, onTables, onNet := faultRun(t, defined.Sprintlink(), seed, plan, loss, dup,
		defined.WithLookahead())
	rep := mustDegradeGracefully(t, "lookahead-on", onNet, nil)
	st := onNet.Stats()
	if st.LookaheadHolds == 0 {
		t.Fatal("lookahead never held an arrival — the stress scenario is inert")
	}
	if st.SettleViolations != 0 {
		t.Fatalf("settle violations under faulted lookahead: %+v", st)
	}
	if rep.WindowHighWater == 0 {
		t.Fatal("window high-water mark never recorded — the wedge detector is blind")
	}

	shOrders, _, shTables, shNet := faultRun(t, defined.Sprintlink(), seed, plan, loss, dup,
		defined.WithLookahead(), defined.WithShards(4))
	diffOrders(t, "lookahead 4-shard vs sequential under faults", shOrders, onOrders)
	diffTables(t, "lookahead 4-shard vs sequential under faults", shTables, onTables)
	mustDegradeGracefully(t, "lookahead 4-shard", shNet, nil)
}

// panicApp wraps a daemon with a fuse that blows on the n-th handled
// message: the handler panics mid-delivery, modeling a daemon bug. The
// embedded interface deliberately hides the Journaled capability (the
// clone-fallback path, like cloneOnlyApp), so the recovery test covers
// the checkpoint mode a buggy third-party daemon would actually run in.
type panicApp struct {
	api.Application
	fuse *int
}

func (p panicApp) HandleMessage(m *defined.Message) []defined.Out {
	if *p.fuse > 0 {
		*p.fuse--
		if *p.fuse == 0 {
			panic("injected daemon bug")
		}
	}
	return p.Application.HandleMessage(m)
}

// TestPanicQuarantineGolden injects a daemon panic mid-run and requires
// the substrate to convert it into a deterministic crash fault: the run
// completes (no propagated panic, no wedge), the node is quarantined and
// then revived by a scheduled restart, the whole network re-converges to
// coherent routes, and the execution — panic included — is bit-identical
// between the sequential and the 4-shard engine.
func TestPanicQuarantineGolden(t *testing.T) {
	const (
		seed    = 3
		victim  = defined.NodeID(5)
		fuseLen = 25
		restart = 3 // seconds
	)
	mi := checkpoint.Strategy{Timing: checkpoint.TM, Mode: checkpoint.MI}
	plan := faults.NewPlan().Restart(defined.Seconds(restart), victim)

	run := func(shards int) ([][]string, string, []string, *defined.Network, faults.RouteReader) {
		g := defined.Sprintlink()
		fuse := fuseLen
		apps := make([]defined.Application, g.N)
		daemons := make([]*ospf.Daemon, g.N)
		for i := range apps {
			daemons[i] = ospf.New(ospf.Config{})
			if defined.NodeID(i) == victim {
				apps[i] = panicApp{daemons[i], &fuse}
			} else {
				apps[i] = daemons[i]
			}
		}
		net := mustNet(t, g, apps,
			defined.WithSeed(seed), defined.WithStrategy(mi), defined.WithDeliveryLog(),
			defined.WithFaultPlan(plan), defined.WithShards(shards))
		net.Run(plan.Horizon().Add(faults.ConvergenceSlack(g)))
		if !net.Drain() {
			t.Fatal("network failed to quiesce after a recovered daemon panic")
		}
		var orders [][]string
		var tables []string
		for i := 0; i < g.N; i++ {
			orders = append(orders, net.CommittedOrder(defined.NodeID(i)))
			tables = append(tables, daemons[i].DumpTable())
		}
		// The victim is wrapped, so the route reader goes through the
		// daemon slice instead of net.App type assertions.
		routes := func(src, dst defined.NodeID) (int64, bool) {
			r, ok := daemons[src].RoutingTable()[dst]
			return int64(r.Cost), ok
		}
		return orders, fmt.Sprintf("%+v", net.Stats()), tables, net, routes
	}

	orders, stats, tables, net, routes := run(0)
	st := net.Stats()
	if st.PanicCrashes == 0 {
		t.Fatal("the injected panic never fired")
	}
	if st.NodeRestarts == 0 {
		t.Fatal("the scheduled restart never revived the quarantined node")
	}
	if net.Crashed(victim) {
		t.Fatal("victim still quarantined after its restart")
	}
	rep := mustDegradeGracefully(t, "panic recovery", net, routes)
	if rep.SettleViolations != 0 || rep.PoolViolations != 0 {
		t.Fatalf("violations after panic recovery: %+v", rep)
	}

	shOrders, shStats, shTables, shNet, shRoutes := run(4)
	diffOrders(t, "panic 4-shard vs sequential", shOrders, orders)
	diffTables(t, "panic 4-shard vs sequential", shTables, tables)
	if shStats != stats {
		t.Fatalf("panic 4-shard vs sequential stats differ:\n%s\nvs\n%s", shStats, stats)
	}
	mustDegradeGracefully(t, "panic recovery (4-shard)", shNet, shRoutes)
}
