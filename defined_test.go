package defined_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"defined"
	"defined/internal/routing/ospf"
)

func ospfApps(n int) []defined.Application {
	apps := make([]defined.Application, n)
	for i := range apps {
		apps[i] = ospf.New(ospf.Config{})
	}
	return apps
}

// TestPublicAPIEndToEnd exercises the full documented workflow: production
// run with recording, deterministic committed orders across seeds, replay
// reproducing the execution, interactive session.
// mustNet builds a network, failing the test on a spec validation error.
func mustNet(tb testing.TB, g *defined.Topology, apps []defined.Application, opts ...defined.Option) *defined.Network {
	tb.Helper()
	net, err := defined.NewNetwork(g, apps, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	return net
}

func TestPublicAPIEndToEnd(t *testing.T) {
	g := defined.Brite(10, 2, 3)

	run := func(seed uint64) (*defined.Network, *defined.Recording) {
		net := mustNet(t, g, ospfApps(g.N),
			defined.WithSeed(seed),
			defined.WithJitterScale(3),
			defined.WithRecording(),
			defined.WithDeliveryLog(),
		)
		l := g.Links[0]
		net.At(defined.Seconds(0.01), func() {
			if err := net.InjectLinkChange(l.A, l.B, false); err != nil {
				t.Errorf("inject: %v", err)
			}
		})
		net.At(defined.Seconds(0.6), func() {
			if err := net.InjectLinkChange(l.A, l.B, true); err != nil {
				t.Errorf("inject: %v", err)
			}
		})
		net.Run(defined.Seconds(2))
		if !net.Drain() {
			t.Fatal("network did not drain")
		}
		return net, net.Recording()
	}

	netA, rec := run(1)
	netB, _ := run(2)

	// Determinism across seeds (same externals).
	for i := 0; i < g.N; i++ {
		a := netA.CommittedOrder(defined.NodeID(i))
		b := netB.CommittedOrder(defined.NodeID(i))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("node %d: committed orders differ across seeds", i)
		}
	}

	// Replay reproduces the recorded run.
	rp, err := defined.NewReplay(g, ospfApps(g.N), rec)
	if err != nil {
		t.Fatal(err)
	}
	if n := rp.RunToEnd(); n == 0 || !rp.Done() {
		t.Fatalf("replay: %d deliveries, done=%v", n, rp.Done())
	}
	for i := 0; i < g.N; i++ {
		if !reflect.DeepEqual(netA.CommittedOrder(defined.NodeID(i)), rp.DeliveredOrder(defined.NodeID(i))) {
			t.Fatalf("node %d: replay diverged from production", i)
		}
	}

	// Final routing state matches production.
	for i := 0; i < g.N; i++ {
		prod := netA.App(defined.NodeID(i)).(*ospf.Daemon).DumpTable()
		rep := rp.App(defined.NodeID(i)).(*ospf.Daemon).DumpTable()
		if prod != rep {
			t.Fatalf("node %d: routing tables differ\nprod:\n%s\nreplay:\n%s", i, prod, rep)
		}
	}
}

func TestReplayBreakpointAndDebugSession(t *testing.T) {
	g := defined.Brite(8, 2, 5)
	net := mustNet(t, g, ospfApps(g.N), defined.WithRecording(), defined.WithSeed(4))
	l := g.Links[1]
	net.At(defined.Seconds(0.05), func() { _ = net.InjectLinkChange(l.A, l.B, false) })
	net.Run(defined.Seconds(1))
	net.Drain()
	rec := net.Recording()

	rp, err := defined.NewReplay(g, ospfApps(g.N), rec, defined.WithReplayLog())
	if err != nil {
		t.Fatal(err)
	}
	rp.SetBreakpoint(func(d defined.Delivery) bool { return d.Msg != nil })
	rp.RunToEnd()
	if rp.BreakpointHit() == nil {
		t.Fatal("breakpoint did not fire")
	}
	rp.SetBreakpoint(nil)

	var out bytes.Buffer
	rp.Debug(strings.NewReader("where\nstate 0\ncontinue\nquit\n"), &out)
	if !strings.Contains(out.String(), "replay complete") {
		t.Fatalf("debug session output:\n%s", out.String())
	}
	if len(rp.Steps()) == 0 {
		t.Fatal("no step summaries")
	}
}

func TestBaselineAndOrderingOptions(t *testing.T) {
	g := defined.Brite(8, 2, 7)
	base := mustNet(t, g, ospfApps(g.N), defined.WithBaseline(), defined.WithSeed(1))
	base.Run(defined.Seconds(1.5))
	base.Drain()
	if base.Stats().Rollbacks != 0 {
		t.Fatal("baseline must not roll back")
	}
	if base.PacketsReceived(0) == 0 {
		t.Fatal("baseline should still carry traffic")
	}

	ro := mustNet(t, g, ospfApps(g.N),
		defined.WithOrdering(defined.OrderingRO(9)), defined.WithSeed(1))
	ro.Run(defined.Seconds(1.5))
	ro.Drain()
	oo := mustNet(t, g, ospfApps(g.N), defined.WithSeed(1))
	oo.Run(defined.Seconds(1.5))
	oo.Drain()
	if ro.Stats().Rollbacks <= oo.Stats().Rollbacks {
		t.Fatalf("RO (%d) should roll back more than OO (%d)",
			ro.Stats().Rollbacks, oo.Stats().Rollbacks)
	}

	oo.ResetPacketCounters()
	if oo.PacketsReceived(0) != 0 {
		t.Fatal("reset should zero counters")
	}
}

func TestCustomTopologyAndHelpers(t *testing.T) {
	g, err := defined.NewTopology("pair", 2, []defined.Link{
		{A: 0, B: 1, Delay: 5 * defined.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 2 {
		t.Fatal("bad topology")
	}
	if defined.Seconds(1.5) != defined.Time(1_500_000) {
		t.Fatal("Seconds conversion wrong")
	}
	for _, tp := range []*defined.Topology{defined.Sprintlink(), defined.Ebone(), defined.Level3()} {
		if tp.N == 0 {
			t.Fatal("empty named topology")
		}
	}
	if defined.OrderingOO().Name() != "OO" || defined.OrderingRO(1).Name() != "RO" {
		t.Fatal("ordering helpers wrong")
	}
}
